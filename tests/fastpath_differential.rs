//! Property-based differential testing of the compiled fast-path
//! executor.
//!
//! The tree-walking [`Interpreter`] is the semantic oracle; the linear
//! micro-op [`CompiledKernel`] is the optimized engine, run in both of
//! its tiers — the scalar micro-op fast path (`with_simd(false)`) and
//! the ncvec SIMD tier (default). For every example application and for
//! proptest-generated kernels × random windows, all three must agree
//! bit-for-bit: output windows (chunks and extension bytes), forwarding
//! verdicts, persistent switch state (including the replay-filter
//! `__nclr_dups_*` registers) after every window, host memory for
//! incoming kernels, and — under a step-limit sweep — the partial
//! effects left behind when the budget runs out mid-kernel.

use c3::{Chunk, HostId, KernelId, NodeId, ScalarType, Value, Window};
use ncl_core::apps::{allreduce_source, kvs_source};
use ncl_core::{compile, CompileConfig};
use ncl_ir::ir::Module;
use ncl_ir::lower::{lower, LoweringConfig};
use ncl_ir::{CompiledKernel, ExecScratch, HostMemory, Interpreter, MapId, SwitchState};
use proptest::prelude::*;

#[path = "common/corpus.rs"]
mod corpus;

/// Expression atoms over `data[0..4]`, the loop-free subset.
fn gen_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0..4usize).prop_map(|i| format!("data[{i}]")),
        (-20i32..20).prop_map(|c| format!("({c})")),
        Just("window.seq".to_string()),
        Just("(int)window.len".to_string()),
        (0..4usize, 1..64u32).prop_map(|(i, salt)| format!("(int)_hash(data[{i}], {salt})")),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("&"),
                    Just("|"),
                    Just("^")
                ]
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (inner.clone(), 1..5u32).prop_map(|(a, s)| format!("({a} >> {s})")),
        ]
    })
    .boxed()
}

fn gen_cond() -> BoxedStrategy<String> {
    (
        gen_expr(1),
        gen_expr(1),
        prop_oneof![Just("<"), Just("=="), Just(">"), Just("!=")],
    )
        .prop_map(|(a, b, op)| format!("{a} {op} {b}"))
        .boxed()
}

fn gen_stmt() -> BoxedStrategy<String> {
    prop_oneof![
        (0..4usize, gen_expr(2)).prop_map(|(i, e)| format!("data[{i}] = {e};")),
        (0..8usize, gen_expr(1)).prop_map(|(i, e)| format!("mem[{i}] += {e};")),
        (gen_cond(), 0..4usize, gen_expr(1), 0..4usize, gen_expr(1)).prop_map(
            |(c, i, a, j, b)| format!(
                "if ({c}) {{ data[{i}] = {a}; }} else {{ data[{j}] = {b}; }}"
            )
        ),
        (gen_cond(), 0..8usize, gen_expr(1))
            .prop_map(|(c, i, e)| format!("if ({c}) {{ mem[{i}] = {e}; }}")),
        gen_cond().prop_map(|c| format!("if ({c}) {{ _reflect(); }} else {{ _drop(); }}")),
        (gen_cond(), 0..8usize)
            .prop_map(|(c, i)| format!("if ({c}) {{ mem[{i}] += 1; _bcast(); }}")),
        // Map lookup (entries installed by the harness on both sides).
        (0..4usize, 0..4usize).prop_map(|(i, j)| format!(
            "if (auto *p = Idx[(uint64_t)data[{i}]]) {{ data[{j}] = (int)*p; }}"
        )),
        // Window-extension traffic.
        gen_expr(1).prop_map(|e| format!("window.tag = (uint16_t)({e});")),
        (0..4usize).prop_map(|i| format!("data[{i}] = (int)window.tag;")),
    ]
    .boxed()
}

fn gen_kernel() -> BoxedStrategy<String> {
    proptest::collection::vec(gen_stmt(), 1..7)
        .prop_map(|stmts| {
            let body = stmts.join("\n    ");
            format!(
                "_wnd_ struct W {{ uint16_t tag; }};\n\
                 _net_ _at_(\"s1\") ncl::Map<uint64_t, uint8_t, 16> Idx;\n\
                 _net_ _at_(\"s1\") int mem[8] = {{0}};\n\
                 _net_ _out_ void k(int *data) {{\n    {body}\n}}\n"
            )
        })
        .boxed()
}

fn gen_window() -> BoxedStrategy<Window> {
    (
        proptest::collection::vec(any::<i32>(), 4),
        0..4u32,
        any::<u16>(),
    )
        .prop_map(|(vals, seq, tag)| {
            let mut w = Window {
                kernel: KernelId(1),
                seq,
                sender: HostId(1),
                from: NodeId::Host(HostId(1)),
                last: false,
                chunks: vec![Chunk {
                    offset: 0,
                    data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
                }],
                ext: vec![],
            };
            w.ext_write(0, Value::new(ScalarType::U16, tag as u64));
            w
        })
        .boxed()
}

fn lower_kernel(src: &str, masks: &[(&str, Vec<u16>)]) -> Module {
    let checked = ncl_lang::frontend(src, "gen.ncl")
        .unwrap_or_else(|d| panic!("frontend: {}\n{src}", ncl_lang::diag::render(&d)));
    let lcfg = LoweringConfig {
        masks: masks
            .iter()
            .map(|(n, m)| (n.to_string(), m.clone()))
            .collect(),
        ..LoweringConfig::default()
    };
    let mut module =
        lower(&checked, &lcfg).unwrap_or_else(|d| panic!("lower: {}", ncl_lang::diag::render(&d)));
    ncl_ir::passes::optimize(&mut module);
    module
}

/// Asserts the two persistent states are bit-identical.
macro_rules! assert_states_eq {
    ($a:expr, $b:expr, $ctx:expr) => {
        prop_assert_eq!(&$a.registers, &$b.registers, "registers diverged: {}", $ctx);
        prop_assert_eq!(&$a.ctrls, &$b.ctrls, "ctrls diverged: {}", $ctx);
        prop_assert_eq!(&$a.maps, &$b.maps, "maps diverged: {}", $ctx);
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Scalar fast path ≡ SIMD tier ≡ interpreter on random kernels ×
    /// random window sequences, with persistent switch state carried
    /// across windows.
    #[test]
    fn fastpath_matches_interpreter(
        src in gen_kernel(),
        windows in proptest::collection::vec(gen_window(), 1..5),
    ) {
        let module = lower_kernel(&src, &[("k", vec![4])]);
        let kir = module.kernel("k").unwrap();
        let scalar = CompiledKernel::compile_for(kir, &module).with_simd(false);
        let simd = CompiledKernel::compile_for(kir, &module);
        let mut s_interp = SwitchState::from_module(&module);
        for key in 0..8u64 {
            let val = Value::new(ScalarType::U8, key.wrapping_mul(3) & 0xFF);
            s_interp.map_insert(MapId(0), key, val);
        }
        let mut s_fast = s_interp.clone();
        let mut s_simd = s_interp.clone();
        let it = Interpreter::default();
        let mut scratch = ExecScratch::new();
        for (wi, w) in windows.iter().enumerate() {
            let mut w_i = w.clone();
            let mut w_f = w.clone();
            let mut w_v = w.clone();
            let f_i = it
                .run_outgoing(kir, &mut w_i, &mut s_interp)
                .expect("interp runs");
            let f_f = scalar
                .run_outgoing(&mut w_f, &mut s_fast, &mut scratch)
                .expect("fast path runs");
            let f_v = simd
                .run_outgoing(&mut w_v, &mut s_simd, &mut scratch)
                .expect("simd tier runs");
            prop_assert_eq!(&f_i, &f_f, "fwd diverged, window {} of:\n{}", wi, &src);
            prop_assert_eq!(&f_i, &f_v, "simd fwd diverged, window {} of:\n{}", wi, &src);
            prop_assert_eq!(&w_i, &w_f, "window diverged, window {} of:\n{}", wi, &src);
            prop_assert_eq!(&w_i, &w_v, "simd window diverged, window {} of:\n{}", wi, &src);
            assert_states_eq!(
                s_interp,
                s_fast,
                format_args!("window {wi} of:\n{src}")
            );
            assert_states_eq!(
                s_interp,
                s_simd,
                format_args!("simd, window {wi} of:\n{src}")
            );
        }
    }

    /// Fast path ≡ interpreter for incoming kernels writing host memory.
    #[test]
    fn fastpath_matches_interpreter_incoming(
        vals in proptest::collection::vec(any::<i32>(), 4),
        seq in 0..4u32,
        last in any::<bool>(),
    ) {
        let src = allreduce_source(16, 4);
        let module =
            lower_kernel(&src, &[("allreduce", vec![4]), ("result", vec![4])]);
        let kir = module.kernel("result").unwrap();
        let compiled = CompiledKernel::compile(kir);
        let ext = [(ScalarType::I32, 16), (ScalarType::Bool, 1)];
        let mut m_interp = HostMemory::new(&ext);
        let mut m_fast = HostMemory::new(&ext);
        let w = Window {
            kernel: KernelId(2),
            seq,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last,
            chunks: vec![Chunk {
                offset: seq * 16,
                data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
            }],
            ext: vec![],
        };
        let it = Interpreter::default();
        let mut scratch = ExecScratch::new();
        let mut w_i = w.clone();
        let mut w_f = w;
        it.run_incoming(kir, &mut w_i, &mut m_interp).expect("interp runs");
        compiled
            .run_incoming(&mut w_f, &mut m_fast, &mut scratch)
            .expect("fast path runs");
        prop_assert_eq!(&m_interp.arrays, &m_fast.arrays);
        prop_assert_eq!(&w_i, &w_f);
    }
}

/// Differential harness for ncvec fusion edge cases: compiles the
/// allreduce kernel at window width `win_len` and drives the three
/// tiers (interpreter, scalar fast path, SIMD) with identical window
/// sequences, asserting bit-identical forwarding verdicts, output
/// windows, and switch state after every window.
///
/// `wild_seq` drives one window at an arbitrary sequence number, so
/// the fused runs' masked slot indices (`accum[seq*len + i]`) can wrap
/// the array — the case `ncvec::plan` must detect and decline into the
/// scalar epilogue. `vals` is cycled to fill the window.
fn check_ragged_window(win_len: usize, wild_seq: u32, vals: &[i32]) {
    // Power-of-two array lengths, so accesses lower to the masked ops
    // fusion matches on — the window width alone supplies the
    // raggedness. (The generator's `allreduce_source(4*len, len)` would
    // make the arrays ragged too, defeating fusion outright.)
    let src = r#"
_net_ _at_("s1") int accum[256] = {0};
_net_ _at_("s1") unsigned count[8] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;
_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] % nworkers == 0) {
        memcpy(data, &accum[base], window.len * 4);
        _bcast();
    } else { _drop(); }
}
"#;
    let module = lower_kernel(src, &[("allreduce", vec![win_len as u16])]);
    let kir = module.kernel("allreduce").unwrap();
    let scalar = CompiledKernel::compile_for(kir, &module).with_simd(false);
    let simd = CompiledKernel::compile_for(kir, &module);
    assert!(
        simd.vec_runs() >= 1,
        "win_len {win_len}: the accumulate loop must fuse for this test to bite"
    );
    let mut s_interp = SwitchState::from_module(&module);
    // nworkers := 3, so the third window per slot broadcasts the sums
    // (exercising the reg→win fused run, not just the accumulate).
    s_interp.ctrl_write(ncl_ir::CtrlId(0), Value::u32(3));
    let mut s_fast = s_interp.clone();
    let mut s_simd = s_interp.clone();
    let it = Interpreter::default();
    let mut scratch = ExecScratch::new();
    // Repeating seq 0 accumulates onto non-zero slots; `wild_seq` hits
    // wrapped slot ranges.
    let seqs = [0u32, 1, wild_seq, 0, 0];
    for (wi, &seq) in seqs.iter().enumerate() {
        let w = Window {
            kernel: KernelId(1),
            seq,
            sender: HostId(1 + (wi % 3) as u16),
            from: NodeId::Host(HostId(1 + (wi % 3) as u16)),
            last: false,
            chunks: vec![Chunk {
                offset: 0,
                data: (0..win_len)
                    .flat_map(|i| vals[i % vals.len()].to_be_bytes())
                    .collect(),
            }],
            ext: vec![],
        };
        let mut w_i = w.clone();
        let mut w_f = w.clone();
        let mut w_v = w;
        let f_i = it.run_outgoing(kir, &mut w_i, &mut s_interp).unwrap();
        let f_f = scalar
            .run_outgoing(&mut w_f, &mut s_fast, &mut scratch)
            .unwrap();
        let f_v = simd
            .run_outgoing(&mut w_v, &mut s_simd, &mut scratch)
            .unwrap();
        assert_eq!(f_i, f_f, "scalar fwd, window {wi} (win_len {win_len})");
        assert_eq!(f_i, f_v, "simd fwd, window {wi} (win_len {win_len})");
        assert_eq!(w_i, w_f, "scalar window, window {wi} (win_len {win_len})");
        assert_eq!(w_i, w_v, "simd window, window {wi} (win_len {win_len})");
        assert_eq!(
            s_interp.registers, s_fast.registers,
            "scalar state, window {wi} (win_len {win_len})"
        );
        assert_eq!(
            s_interp.registers, s_simd.registers,
            "simd state, window {wi} (win_len {win_len})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SIMD tier is bit-identical to the scalar fast path and the
    /// interpreter on ragged window widths — every `len % 8` residue,
    /// so lane bodies of every shape get a scalar epilogue — and on
    /// wrapped slot ranges from arbitrary sequence numbers.
    #[test]
    fn simd_tier_matches_on_ragged_windows(
        win_len in 9usize..40,
        wild_seq in any::<u32>(),
        vals in proptest::collection::vec(any::<i32>(), 1..12),
    ) {
        check_ragged_window(win_len, wild_seq, &vals);
    }
}

/// Replays this file's section of the shared regression corpus
/// (tests/corpus/shared.proptest-regressions): pinned lane-boundary
/// widths (residues 1 and 7, and an exact multiple of the lane width),
/// a slot-wrapping sequence number, and overflow-prone values.
#[test]
fn corpus_ragged_windows_match_across_tiers() {
    let entries =
        corpus::entries_for("tests/fastpath_differential.rs::simd_tier_matches_on_ragged_windows");
    assert!(!entries.is_empty(), "corpus section must not be pruned");
    for e in &entries {
        let win_len: usize = corpus::num(&e.payload, "win_len");
        let wild_seq: u32 = corpus::num(&e.payload, "wild_seq");
        let vals: Vec<i32> = corpus::list(&e.payload, "vals");
        check_ragged_window(win_len, wild_seq, &vals);
    }
}

/// Element loops whose bodies ncvec cannot pack — a per-element global
/// (ctrl) read interrupting the run, and a slot stride that crosses
/// lanes — still execute bit-identically on the SIMD tier: fusion
/// either declines at compile time or `plan` falls back to the scalar
/// loop at run time, and the differential cannot tell which.
#[test]
fn fusion_declines_on_global_reads_and_lane_crossing_strides() {
    let src_ctrl_read = r#"
_net_ _at_("s1") int acc[32] = {0};
_net_ _at_("s1") _ctrl_ unsigned bias;
_net_ _out_ void k(int *data) {
    for (unsigned i = 0; i < window.len; ++i)
        acc[i] += data[i] + (int)bias;
    _drop();
}
"#;
    let src_stride = r#"
_net_ _at_("s1") int acc[64] = {0};
_net_ _out_ void k(int *data) {
    for (unsigned i = 0; i < window.len; ++i)
        acc[i + i] += data[i];
    _drop();
}
"#;
    for (name, src) in [("ctrl-read", src_ctrl_read), ("stride-2", src_stride)] {
        let module = lower_kernel(src, &[("k", vec![16])]);
        let kir = module.kernel("k").unwrap();
        let scalar = CompiledKernel::compile_for(kir, &module).with_simd(false);
        let simd = CompiledKernel::compile_for(kir, &module);
        let mut s_interp = SwitchState::from_module(&module);
        if name == "ctrl-read" {
            s_interp.ctrl_write(ncl_ir::CtrlId(0), Value::u32(7));
        }
        let mut s_fast = s_interp.clone();
        let mut s_simd = s_interp.clone();
        let it = Interpreter::default();
        let mut scratch = ExecScratch::new();
        for rep in 0..3 {
            let w = Window {
                kernel: KernelId(1),
                seq: rep,
                sender: HostId(1),
                from: NodeId::Host(HostId(1)),
                last: false,
                chunks: vec![Chunk {
                    offset: 0,
                    data: (0..16i32)
                        .flat_map(|i| (i * 0x0101 - 7 + rep as i32).to_be_bytes())
                        .collect(),
                }],
                ext: vec![],
            };
            let mut w_i = w.clone();
            let mut w_f = w.clone();
            let mut w_v = w;
            let f_i = it.run_outgoing(kir, &mut w_i, &mut s_interp).unwrap();
            let f_f = scalar
                .run_outgoing(&mut w_f, &mut s_fast, &mut scratch)
                .unwrap();
            let f_v = simd
                .run_outgoing(&mut w_v, &mut s_simd, &mut scratch)
                .unwrap();
            assert_eq!(f_i, f_f, "{name}: scalar fwd, rep {rep}");
            assert_eq!(f_i, f_v, "{name}: simd fwd, rep {rep}");
            assert_eq!(w_i, w_f, "{name}: scalar window, rep {rep}");
            assert_eq!(w_i, w_v, "{name}: simd window, rep {rep}");
            assert_eq!(s_interp.registers, s_fast.registers, "{name}: scalar state");
            assert_eq!(s_interp.registers, s_simd.registers, "{name}: simd state");
        }
    }
}

/// KVS cache churn across all three tiers: interleaved client GETs,
/// client PUT invalidations, and server refreshes over the whole
/// keyspace. Both fused `memcpy` runs in the query kernel are
/// CmpBr-guarded with map-derived dynamic bases — the cache-hit value
/// copy-out (reg→win) and the server refresh (win→reg) — so this
/// drives the guarded vector paths the GET-only workloads never reach.
#[test]
fn simd_tier_matches_on_kvs_churn() {
    let src = kvs_source(3, 16, 8);
    let module = lower_kernel(&src, &[("query", vec![1, 8, 1])]);
    let kir = module.kernel("query").unwrap();
    let scalar = CompiledKernel::compile_for(kir, &module).with_simd(false);
    let simd = CompiledKernel::compile_for(kir, &module);
    let mut s_interp = SwitchState::from_module(&module);
    for key in 0..64u64 {
        s_interp.map_insert(MapId(0), key, Value::new(ScalarType::U8, key % 16));
    }
    let mut s_fast = s_interp.clone();
    let mut s_simd = s_interp.clone();
    let it = Interpreter::default();
    let mut scratch = ExecScratch::new();
    let client = NodeId::Host(HostId(1));
    let server = NodeId::Host(HostId(3));
    for step in 0..200u32 {
        let key = (step as u64 * 7 + 3) % 64;
        let (from, update) = match step % 3 {
            0 => (client, false),         // GET
            1 => (server, true),          // refresh
            _ => (client, step % 2 == 1), // PUT or GET
        };
        let w = Window {
            kernel: KernelId(1),
            seq: step,
            sender: HostId(if from == server { 3 } else { 1 }),
            from,
            last: false,
            chunks: vec![
                Chunk {
                    offset: 0,
                    data: key.to_be_bytes().to_vec(),
                },
                Chunk {
                    offset: 0,
                    data: (0..8u32)
                        .flat_map(|i| (key as u32 * 1000 + i + step).to_be_bytes())
                        .collect(),
                },
                Chunk {
                    offset: 0,
                    data: vec![update as u8],
                },
            ],
            ext: vec![],
        };
        let mut w_i = w.clone();
        let mut w_f = w.clone();
        let mut w_v = w;
        let f_i = it.run_outgoing(kir, &mut w_i, &mut s_interp).unwrap();
        let f_f = scalar
            .run_outgoing(&mut w_f, &mut s_fast, &mut scratch)
            .unwrap();
        let f_v = simd
            .run_outgoing(&mut w_v, &mut s_simd, &mut scratch)
            .unwrap();
        assert_eq!(f_i, f_f, "scalar fwd, step {step} key {key}");
        assert_eq!(f_i, f_v, "simd fwd, step {step} key {key}");
        assert_eq!(w_i, w_f, "scalar window, step {step} key {key}");
        assert_eq!(w_i, w_v, "simd window, step {step} key {key}");
        assert_eq!(
            s_interp.registers, s_fast.registers,
            "scalar state, step {step} key {key}"
        );
        assert_eq!(
            s_interp.registers, s_simd.registers,
            "simd state, step {step} key {key}"
        );
    }
}

/// Step-limit sweep: for every budget from 0 to past the kernel's full
/// interpreter-equivalent cost, the three tiers agree on (a) whether
/// the budget suffices, and (b) the partial window and state effects
/// left behind when it does not. Fused vector runs pre-charge their
/// interpreter-equivalent step count, so exhaustion must land mid-run
/// at the same element the tree-walking oracle stops at.
#[test]
fn step_limit_sweep_leaves_identical_partial_effects() {
    let win_len = 16usize;
    let src = allreduce_source(win_len * 4, win_len);
    let module = lower_kernel(
        &src,
        &[
            ("allreduce", vec![win_len as u16]),
            ("result", vec![win_len as u16]),
        ],
    );
    let kir = module.kernel("allreduce").unwrap();
    let total = CompiledKernel::compile_for(kir, &module).interp_steps();
    assert!(total > 2 * win_len, "sweep must cross both fused runs");
    let w0 = Window {
        kernel: KernelId(1),
        seq: 0,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: false,
        chunks: vec![Chunk {
            offset: 0,
            data: (0..win_len as i32)
                .flat_map(|i| (i * 3 - 5).to_be_bytes())
                .collect(),
        }],
        ext: vec![],
    };
    for limit in 0..=total + 2 {
        let it = Interpreter { step_limit: limit };
        let scalar = CompiledKernel::compile_for(kir, &module)
            .with_simd(false)
            .with_step_limit(limit);
        let simd = CompiledKernel::compile_for(kir, &module).with_step_limit(limit);
        let mut s_interp = SwitchState::from_module(&module);
        // nworkers := 1, so a single window takes the completion branch
        // and the broadcast memcpy (the reg→win fused run) also runs.
        s_interp.ctrl_write(ncl_ir::CtrlId(0), Value::u32(1));
        let mut s_fast = s_interp.clone();
        let mut s_simd = s_interp.clone();
        let mut scratch = ExecScratch::new();
        let mut w_i = w0.clone();
        let mut w_f = w0.clone();
        let mut w_v = w0.clone();
        let f_i = it.run_outgoing(kir, &mut w_i, &mut s_interp);
        let f_f = scalar.run_outgoing(&mut w_f, &mut s_fast, &mut scratch);
        let f_v = simd.run_outgoing(&mut w_v, &mut s_simd, &mut scratch);
        assert_eq!(f_i, f_f, "scalar verdict, limit {limit}/{total}");
        assert_eq!(f_i, f_v, "simd verdict, limit {limit}/{total}");
        assert_eq!(w_i, w_f, "scalar partial window, limit {limit}/{total}");
        assert_eq!(w_i, w_v, "simd partial window, limit {limit}/{total}");
        assert_eq!(
            s_interp.registers, s_fast.registers,
            "scalar partial state, limit {limit}/{total}"
        );
        assert_eq!(
            s_interp.registers, s_simd.registers,
            "simd partial state, limit {limit}/{total}"
        );
    }
}

/// Deterministic differential over the example applications: the
/// location-versioned modules the deployment actually runs, driven with
/// full workload window sequences.
#[test]
fn fastpath_matches_interpreter_on_example_apps() {
    // AllReduce (Fig. 4): 3 workers × 4 windows, aggregation + bcast.
    let src = allreduce_source(16, 4);
    let and = "hosts worker 3\nswitch s1\nlink worker* s1\n";
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![4]);
    cfg.masks.insert("result".into(), vec![4]);
    let p = compile(&src, and, &cfg).expect("allreduce compiles");
    let module = p.module("s1").expect("versioned module");
    let kir = module.kernel("allreduce").unwrap();
    let compiled = CompiledKernel::compile_for(kir, module);
    let mut s_interp = SwitchState::from_module(module);
    s_interp.location_id = p.overlay.node("s1").unwrap().id;
    // nworkers := 3 on both sides (ctrl 0 is the only control var).
    s_interp.ctrl_write(ncl_ir::CtrlId(0), Value::u32(3));
    let mut s_fast = s_interp.clone();
    let it = Interpreter::default();
    let mut scratch = ExecScratch::new();
    for seq in 0..4u32 {
        for worker in 1..=3u16 {
            let w = Window {
                kernel: KernelId(p.kernel_ids["allreduce"]),
                seq,
                sender: HostId(worker),
                from: NodeId::Host(HostId(worker)),
                last: seq == 3,
                chunks: vec![Chunk {
                    offset: seq * 16,
                    data: (0..4)
                        .flat_map(|i| (worker as i32 * 100 + i).to_be_bytes())
                        .collect(),
                }],
                ext: vec![],
            };
            let mut w_i = w.clone();
            let mut w_f = w;
            let f_i = it.run_outgoing(kir, &mut w_i, &mut s_interp).unwrap();
            let f_f = compiled
                .run_outgoing(&mut w_f, &mut s_fast, &mut scratch)
                .unwrap();
            assert_eq!(f_i, f_f, "allreduce fwd, worker {worker} seq {seq}");
            assert_eq!(w_i, w_f, "allreduce window, worker {worker} seq {seq}");
            assert_eq!(s_interp.registers, s_fast.registers);
            assert_eq!(s_interp.ctrls, s_fast.ctrls);
        }
    }

    // KVS (Fig. 5): cached GETs, Put invalidation, server refresh.
    let and = "hosts client 2\nswitch s1\nhost server\nlink client* s1\nlink server s1\n";
    let src = kvs_source(3, 16, 8);
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("query".into(), vec![1, 8, 1]);
    let p = compile(&src, and, &cfg).expect("kvs compiles");
    let module = p.module("s1").expect("versioned module");
    let kir = module.kernel("query").unwrap();
    let compiled = CompiledKernel::compile_for(kir, module);
    let mut s_interp = SwitchState::from_module(module);
    s_interp.location_id = p.overlay.node("s1").unwrap().id;
    for key in 0..8u64 {
        s_interp.map_insert(MapId(0), key * 7, Value::new(ScalarType::U8, key));
    }
    let mut s_fast = s_interp.clone();
    let it = Interpreter::default();
    let mut scratch = ExecScratch::new();
    let query = |key: u64, update: bool, from: NodeId, seq: u32| Window {
        kernel: KernelId(p.kernel_ids["query"]),
        seq,
        sender: HostId(1),
        from,
        last: false,
        chunks: vec![
            Chunk {
                offset: 0,
                data: key.to_be_bytes().to_vec(),
            },
            Chunk {
                offset: 0,
                data: (0..8u32)
                    .flat_map(|i| (key as u32 + i).to_be_bytes())
                    .collect(),
            },
            Chunk {
                offset: 0,
                data: vec![update as u8],
            },
        ],
        ext: vec![],
    };
    let client = NodeId::Host(HostId(1));
    let server = NodeId::Host(HostId(3));
    let trace = [
        query(7, false, client, 0),    // GET, cached but invalid → pass
        query(7, true, server, 1),     // server refresh → drop
        query(7, false, client, 2),    // GET, valid hit → reflect
        query(7, true, client, 3),     // client PUT → invalidate, pass
        query(7, false, client, 4),    // GET after PUT → miss, pass
        query(9999, false, client, 5), // uncached key → pass
    ];
    for (i, w) in trace.iter().enumerate() {
        let mut w_i = w.clone();
        let mut w_f = w.clone();
        let f_i = it.run_outgoing(kir, &mut w_i, &mut s_interp).unwrap();
        let f_f = compiled
            .run_outgoing(&mut w_f, &mut s_fast, &mut scratch)
            .unwrap();
        assert_eq!(f_i, f_f, "kvs fwd, step {i}");
        assert_eq!(w_i, w_f, "kvs window, step {i}");
        assert_eq!(s_interp.registers, s_fast.registers, "kvs state, step {i}");
        assert_eq!(s_interp.maps, s_fast.maps, "kvs maps, step {i}");
    }
}
