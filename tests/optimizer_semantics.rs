//! The optimization pipeline (const-fold, copy propagation, DCE, branch
//! simplification, block merging) must preserve interpreter semantics —
//! checked independently of PISA codegen, so optimizer bugs cannot hide
//! behind codegen bugs or vice versa.

use c3::{Chunk, HostId, KernelId, NodeId, Window};
use ncl_ir::lower::{lower, LoweringConfig};
use ncl_ir::{Interpreter, SwitchState};
use proptest::prelude::*;

fn gen_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0..4usize).prop_map(|i| format!("data[{i}]")),
        (-100i32..100).prop_map(|c| format!("({c})")),
        Just("window.seq".to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
    ];
    leaf.prop_recursive(depth, 20, 3, |inner| {
        prop_oneof![(
            inner.clone(),
            inner.clone(),
            prop::sample::select(vec!["+", "-", "*", "&", "|", "^", "/", "%"])
        )
            .prop_map(|(a, b, op)| format!("({a} {op} {b})")),]
    })
    .boxed()
}

fn gen_stmt() -> BoxedStrategy<String> {
    prop_oneof![
        gen_expr(2).prop_map(|e| format!("x = {e};")),
        gen_expr(2).prop_map(|e| format!("y = {e};")),
        (0..4usize, gen_expr(2)).prop_map(|(i, e)| format!("data[{i}] = {e};")),
        (0..8usize, gen_expr(1)).prop_map(|(i, e)| format!("mem[{i}] = {e};")),
        (gen_expr(1), gen_expr(1))
            .prop_map(|(c, e)| format!("if ({c} > 0) {{ x = {e}; }} else {{ y = {e}; }}")),
        // Constant-foldable scaffolding the optimizer should strip.
        Just("x = x + 0;".to_string()),
        Just("y = y * 1;".to_string()),
        Just("if (1 > 2) { data[0] = 99; }".to_string()),
        // A bounded loop that must unroll identically.
        gen_expr(1)
            .prop_map(|e| format!("for (unsigned i = 0; i < 3; ++i) mem[i] = mem[i] + ({e});")),
    ]
    .boxed()
}

fn window(vals: &[i32; 4], seq: u32) -> Window {
    Window {
        kernel: KernelId(1),
        seq,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: false,
        chunks: vec![Chunk {
            offset: 0,
            data: vals.iter().flat_map(|v| v.to_be_bytes()).collect(),
        }],
        ext: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimize_preserves_interpreter_semantics(
        stmts in proptest::collection::vec(gen_stmt(), 1..8),
        inputs in proptest::collection::vec((any::<[i32; 4]>(), 0..4u32), 1..4),
    ) {
        let body = stmts.join("\n    ");
        let src = format!(
            "_net_ _at_(\"s1\") int mem[8] = {{1, 2, 3}};\n\
             _net_ _out_ void k(int *data) {{\n    int x = 0; int y = 1;\n    {body}\n    data[0] = x ^ y;\n}}\n"
        );
        let checked = ncl_lang::frontend(&src, "opt.ncl")
            .unwrap_or_else(|d| panic!("frontend: {}\n{src}", ncl_lang::diag::render(&d)));
        let module = lower(&checked, &LoweringConfig::with_mask("k", vec![4]))
            .unwrap_or_else(|d| panic!("lower: {}", ncl_lang::diag::render(&d)));
        let mut optimized = module.clone();
        let stats = ncl_ir::passes::optimize(&mut optimized);
        prop_assert!(stats.iterations >= 1);

        let it = Interpreter::default();
        let k_raw = module.kernel("k").unwrap();
        let k_opt = optimized.kernel("k").unwrap();
        let mut st_raw = SwitchState::from_module(&module);
        let mut st_opt = SwitchState::from_module(&optimized);
        for (vals, seq) in &inputs {
            let mut w_raw = window(vals, *seq);
            let mut w_opt = w_raw.clone();
            let f_raw = it.run_outgoing(k_raw, &mut w_raw, &mut st_raw).expect("raw");
            let f_opt = it.run_outgoing(k_opt, &mut w_opt, &mut st_opt).expect("opt");
            prop_assert_eq!(f_raw, f_opt, "decision diverged:\n{}", src);
            prop_assert_eq!(&w_raw.chunks, &w_opt.chunks, "window diverged:\n{}", src);
            prop_assert_eq!(
                &st_raw.registers,
                &st_opt.registers,
                "state diverged:\n{}",
                src
            );
        }
        // The optimizer should never grow the program.
        prop_assert!(
            k_opt.inst_count() <= k_raw.inst_count(),
            "optimizer grew the kernel {} -> {}",
            k_raw.inst_count(),
            k_opt.inst_count()
        );
    }
}
