//! Full-system integration test of the paper's Fig. 4 AllReduce:
//! N workers around a ToR switch, in-network aggregation with the
//! compiled kernel, result broadcast, compared against the
//! parameter-server baseline on the same topology.

use ncl::core::apps::{allreduce_source, PsServer, PsWorker};
use ncl::core::control::ControlPlane;
use ncl::core::deploy::{deploy, Deployment};
use ncl::core::nclc::{compile, CompileConfig, CompiledProgram};
use ncl::core::runtime::{NclHost, OutInvocation, TypedArray};
use ncl::model::{HostId, NodeId, ScalarType, Value};
use ncl::netsim::{HostApp, LinkSpec, NetworkBuilder, SwitchCfg};
use std::collections::HashMap;

fn worker_and(n: usize) -> String {
    format!("hosts worker {n}\nswitch s1\nlink worker* s1\n")
}

fn program(nworkers: usize, data_len: usize, win: usize) -> CompiledProgram {
    let src = allreduce_source(data_len, win);
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    compile(&src, &worker_and(nworkers), &cfg).expect("compiles")
}

/// Runs the in-network AllReduce; returns (deployment, kernel id).
fn run_inc(nworkers: usize, data_len: usize, win: usize) -> (Deployment, u16) {
    let program = program(nworkers, data_len, win);
    let kid = program.kernel_ids["allreduce"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=nworkers as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = (0..data_len as i32).map(|i| i + w as i32).collect();
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % nworkers as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, data_len), (ScalarType::Bool, 1)],
        )
        .unwrap();
        host.done_on_flag(kid, 1);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(nworkers as u32),
    );
    dep.net.run();
    (dep, kid)
}

/// Element-wise expected sum for `run_inc`'s data pattern.
fn expected(nworkers: usize, data_len: usize) -> Vec<i64> {
    (0..data_len as i64)
        .map(|i| (1..=nworkers as i64).map(|w| i + w).sum())
        .collect()
}

#[test]
fn four_workers_reduce_correctly() {
    let (dep, kid) = run_inc(4, 64, 8);
    let want = expected(4, 64);
    for w in 1..=4u16 {
        let host = dep.net.host_app::<NclHost>(HostId(w)).unwrap();
        assert!(host.done_at.is_some(), "worker {w} incomplete");
        let mem = host.memory(kid).unwrap();
        for (i, expect) in want.iter().enumerate() {
            assert_eq!(
                mem.arrays[0][i].as_i128() as i64,
                *expect,
                "worker {w} element {i}"
            );
        }
    }
}

#[test]
fn switch_drops_all_but_the_last_contribution() {
    let n = 8;
    let (dep, _) = run_inc(n, 32, 8);
    let stats = dep.net.switch_stats(dep.switch("s1")).unwrap();
    let windows_per_worker = 32 / 8;
    assert_eq!(stats.ncp_processed, (n * windows_per_worker) as u64);
    assert_eq!(stats.broadcast, windows_per_worker as u64);
    assert_eq!(stats.kernel_drops, ((n - 1) * windows_per_worker) as u64);
}

#[test]
fn ingress_to_egress_asymmetry_shows_the_aggregation_win() {
    // N workers each send the full array up; only one aggregated copy
    // per worker comes down. A parameter server would receive N arrays
    // AND send N arrays — the switch halves its egress side entirely.
    let n = 8;
    let (dep, _) = run_inc(n, 128, 8);
    let s1 = NodeId::Switch(dep.switch("s1"));
    let ingress = dep.net.node_ingress_bytes(s1);
    assert!(ingress > 0);
    // Workers received exactly one result stream each: delivered =
    // n × windows.
    assert_eq!(dep.net.stats().delivered, (n * (128 / 8)) as u64);
}

#[test]
fn inc_beats_parameter_server_latency() {
    // The E1 headline shape as a hard assertion: identical star
    // topology and slot sizes; in-network aggregation completes before
    // the host-based parameter server.
    let n = 8;
    let data_len = 256;
    let win = 8;
    let (dep, _) = run_inc(n, data_len, win);
    let inc_done = (1..=n as u16)
        .map(|w| {
            dep.net
                .host_app::<NclHost>(HostId(w))
                .unwrap()
                .done_at
                .expect("completed")
        })
        .max()
        .unwrap();

    // Baseline: workers + dedicated PS host through a plain switch.
    let mut b = NetworkBuilder::new();
    let ps_node = NodeId::Host(HostId(n as u16 + 1));
    let mut worker_ids = Vec::new();
    for w in 1..=n as u16 {
        let data: Vec<i32> = (0..data_len as i32).map(|i| i + w as i32).collect();
        let id = b.add_host(Box::new(PsWorker::new(ps_node, data, win)));
        worker_ids.push(NodeId::Host(id));
    }
    b.add_host(Box::new(PsServer::new(worker_ids)));
    let s = b.add_switch(SwitchCfg::default());
    for w in 1..=n as u16 + 1 {
        b.link(HostId(w), s, LinkSpec::default());
    }
    let mut net = b.build();
    net.run();
    let ps_done = (1..=n as u16)
        .map(|w| {
            net.host_app::<PsWorker>(HostId(w))
                .unwrap()
                .done_at
                .expect("baseline completed")
        })
        .max()
        .unwrap();
    // Baseline correctness first.
    let want = expected(n, data_len);
    let w1 = net.host_app::<PsWorker>(HostId(1)).unwrap();
    for (i, expect) in want.iter().enumerate() {
        assert_eq!(w1.result[i] as i64, *expect, "baseline element {i}");
    }
    assert!(
        inc_done < ps_done,
        "INC {inc_done} ns should beat PS {ps_done} ns"
    );
}

#[test]
fn multiple_rounds_reuse_switch_state() {
    // The count[] reset (Fig. 4 line 11) makes slots reusable: run two
    // back-to-back reductions through the same switch.
    let n = 3;
    let data_len = 32;
    let win = 8;
    let program = program(n, data_len, win);
    let kid = program.kernel_ids["allreduce"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=n as u16 {
        let mut host = NclHost::new(&program);
        for round in 0..2u64 {
            let data: Vec<i32> = vec![(w as i32) * (round as i32 + 1); data_len];
            host.out(OutInvocation {
                kernel: "allreduce".into(),
                arrays: vec![TypedArray::from_i32(&data)],
                dest: NodeId::Host(HostId(w % n as u16 + 1)),
                start: round * 10_000_000, // 10 ms apart
                gap: 0,
            })
            .unwrap();
        }
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, data_len), (ScalarType::Bool, 1)],
        )
        .unwrap();
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .unwrap();
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(n as u32),
    );
    dep.net.run();
    // Fig. 4 as sketched resets `count` but NOT `accum`, so round 2's
    // broadcast carries round 1's sum plus round 2's: 6 + 12 = 18. We
    // reproduce the sketch faithfully; the corrected kernel below shows
    // the production fix.
    let host = dep.net.host_app::<NclHost>(HostId(1)).unwrap();
    let mem = host.memory(kid).unwrap();
    assert_eq!(mem.arrays[0][0], Value::i32(6 + 12));
    let stats = dep.net.switch_stats(s1).unwrap();
    assert_eq!(stats.broadcast, 2 * (data_len / win) as u64);
}

/// Fig. 4 with the multi-round fix real aggregation systems use: the
/// slot's first contribution *overwrites* instead of accumulating
/// (selected on the slot counter), making rounds independent.
#[test]
fn corrected_kernel_supports_repeated_rounds() {
    let n = 3;
    let data_len = 32;
    let win = 8;
    let src = format!(
        r#"
#define DATA_LEN {data_len}
#define WIN_LEN {win}
_net_ _at_("s1") int accum[DATA_LEN] = {{0}};
_net_ _at_("s1") unsigned count[DATA_LEN/WIN_LEN] = {{0}};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {{
    unsigned base = window.seq * window.len;
    bool first = count[window.seq] == 0;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] = first ? data[i] : (accum[base + i] + data[i]);
    if (++count[window.seq] == nworkers) {{
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    }} else {{ _drop(); }}
}}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {{
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    if (window.last) *done = true;
}}
"#
    );
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![win as u16]);
    cfg.masks.insert("result".into(), vec![win as u16]);
    // The round-reset trick reads `count` to decide whether to
    // overwrite or accumulate `accum` — a cross-array read→write chain
    // nclint rightly calls non-atomic on a real pipelined chip. This
    // test exercises the simulator's serial-per-switch window
    // semantics (paper §6), where the chain is safe; downgrade the
    // finding with eyes open.
    use ncl::core::nclc::{LintCode, LintLevel};
    cfg.lint_levels
        .insert(LintCode::NonAtomicRmw, LintLevel::Warn);
    let program =
        compile(&src, &worker_and(n), &cfg).unwrap_or_else(|e| panic!("corrected kernel: {e}"));
    let kid = program.kernel_ids["allreduce"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=n as u16 {
        let mut host = NclHost::new(&program);
        for round in 0..2u64 {
            let data: Vec<i32> = vec![(w as i32) * (round as i32 + 1); data_len];
            host.out(OutInvocation {
                kernel: "allreduce".into(),
                arrays: vec![TypedArray::from_i32(&data)],
                dest: NodeId::Host(HostId(w % n as u16 + 1)),
                start: round * 10_000_000,
                gap: 0,
            })
            .unwrap();
        }
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, data_len), (ScalarType::Bool, 1)],
        )
        .unwrap();
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .unwrap();
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(n as u32),
    );
    dep.net.run();
    // Round 2's clean result: (1+2+3)×2 = 12 per element.
    let host = dep.net.host_app::<NclHost>(HostId(1)).unwrap();
    let mem = host.memory(kid).unwrap();
    assert_eq!(mem.arrays[0][0], Value::i32(12));
}

#[test]
fn scaling_workers_scales_aggregation_not_result_traffic() {
    // Broadcast count is independent of N — the crossover driver in E1.
    for n in [2usize, 4, 8] {
        let (dep, _) = run_inc(n, 64, 8);
        let stats = dep.net.switch_stats(dep.switch("s1")).unwrap();
        assert_eq!(stats.broadcast, 8, "n={n}");
        assert_eq!(stats.ncp_processed, (n * 8) as u64, "n={n}");
    }
}
