//! Cross-crate wire-format agreement: the `ncp` codec (what hosts send)
//! and the parser `ncl-p4` generates (what switches parse) implement the
//! same DESIGN.md §4.4 layout. A drift between them would silently turn
//! every window into pass-through traffic.

use ncl::core::nclc::{compile, CompileConfig};
use ncl::model::{Chunk, HostId, KernelId, NodeId, ScalarType, Value, Window};
use ncl::pisa::{Pipeline, ResourceModel};
use proptest::prelude::*;

#[path = "common/corpus.rs"]
mod corpus;

const AND: &str = "host h1\nhost h2\nswitch s1\nlink h1 s1\nlink h2 s1\n";

/// An identity kernel: the pipeline must deparse exactly what the codec
/// encoded.
fn identity_pipeline(mask: Vec<u16>) -> (Pipeline, u16, usize) {
    let params = (0..mask.len())
        .map(|i| format!("uint32_t *a{i}"))
        .collect::<Vec<_>>()
        .join(", ");
    let src = format!(
        "_wnd_ struct W {{ uint16_t tag; uint32_t aux; }};\n\
         _net_ _out_ void ident({params}) {{ }}\n"
    );
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("ident".into(), mask);
    let program = compile(&src, AND, &cfg).expect("compiles");
    let kid = program.kernel_ids["ident"];
    let ext = program.checked.window_ext.size();
    let pipe = Pipeline::load(
        program.switch("s1").unwrap().pipeline.clone(),
        ResourceModel::default(),
    )
    .unwrap();
    (pipe, kid, ext)
}

/// The round-trip property, callable from both the proptest and the
/// shared-corpus replay: codec-encode → generated-parser → pipeline →
/// deparse → codec-decode is the identity on windows matching the
/// mask.
fn check_encoded_window_roundtrip(
    mask: &[u16],
    seq: u32,
    sender: u16,
    last: bool,
    tag: u16,
    aux: u32,
    seed: u32,
) {
    let (mut pipe, kid, ext_total) = identity_pipeline(mask.to_vec());
    let chunks: Vec<Chunk> = mask
        .iter()
        .enumerate()
        .map(|(ci, &elems)| Chunk {
            offset: seq.wrapping_mul(elems as u32).wrapping_mul(4),
            data: (0..elems as u32)
                .flat_map(|e| {
                    seed.wrapping_add(e)
                        .wrapping_mul(ci as u32 + 1)
                        .to_be_bytes()
                })
                .collect(),
        })
        .collect();
    let mut w = Window {
        kernel: KernelId(kid),
        seq,
        sender: HostId(sender),
        from: NodeId::Host(HostId(sender)),
        last,
        chunks,
        ext: vec![],
    };
    w.ext_write(0, Value::new(ScalarType::U16, tag as u64));
    w.ext_write(2, Value::u32(aux));

    let bytes = ncl::ncp::codec::encode_window(&w, ext_total);
    let out = pipe.process(&bytes).expect("generated parser accepts");
    assert_eq!(out.fwd_code, 0, "identity kernel passes");
    let back = ncl::ncp::codec::decode_window(&out.packet).expect("codec decodes");
    assert_eq!(back.seq, w.seq);
    assert_eq!(back.sender, w.sender);
    assert_eq!(back.last, w.last);
    assert_eq!(&back.chunks, &w.chunks);
    assert_eq!(&back.ext, &w.ext);
    // The switch rewrote nothing else; `from` is rewritten by the
    // embedding (netsim), not the pipeline.
    assert_eq!(back.from, w.from);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encoded_windows_survive_the_generated_pipeline(
        mask in proptest::collection::vec(1u16..6, 1..3),
        seq in any::<u32>(),
        sender in 1u16..50,
        last in any::<bool>(),
        tag in any::<u16>(),
        aux in any::<u32>(),
        seed in any::<u32>(),
    ) {
        check_encoded_window_roundtrip(&mask, seq, sender, last, tag, aux, seed);
    }
}

/// Replays this file's section of the shared regression corpus
/// (tests/corpus/shared.proptest-regressions): the recorded shrunk
/// case — a single-element mask with `seq` at the 2^30 wrap boundary —
/// must keep round-tripping bit-identically.
#[test]
fn corpus_encoded_window_cases_roundtrip() {
    let entries =
        corpus::entries_for("tests/wire_compat.rs::encoded_windows_survive_the_generated_pipeline");
    assert!(!entries.is_empty(), "corpus section must not be pruned");
    for e in &entries {
        let mask: Vec<u16> = corpus::list(&e.payload, "mask");
        check_encoded_window_roundtrip(
            &mask,
            corpus::num(&e.payload, "seq"),
            corpus::num(&e.payload, "sender"),
            corpus::boolean(&e.payload, "last"),
            corpus::num(&e.payload, "tag"),
            corpus::num(&e.payload, "aux"),
            corpus::num(&e.payload, "seed"),
        );
    }
}

#[test]
fn codec_and_codegen_header_constants_agree() {
    // The layout constants the two crates hardcode must match.
    use ncl::ncp::wire::{HEADER_LEN, MAGIC, VERSION};
    assert_eq!(MAGIC, 0x4E43);
    assert_eq!(VERSION, 1);
    assert_eq!(HEADER_LEN, 16);
    let total: usize = ncl::p4::codegen::NCP_FIELDS
        .iter()
        .map(|(_, ty)| ty.size())
        .sum();
    assert_eq!(
        total, HEADER_LEN,
        "generated parser's NCP header width must equal the codec's"
    );
    // Field order sanity: kernel id at offset 4, seq at 6 (the codec's
    // accessors), mirrored in the generated field order.
    let names: Vec<&str> = ncl::p4::codegen::NCP_FIELDS
        .iter()
        .map(|(n, _)| *n)
        .collect();
    assert_eq!(
        names,
        vec![
            "ncp.magic",
            "ncp.version",
            "ncp.flags",
            "ncp.kernel",
            "ncp.seq",
            "ncp.sender",
            "ncp.from",
            "ncp.nchunks",
            "ncp.ext_len",
        ]
    );
}

#[test]
fn truncated_and_corrupt_packets_never_execute() {
    let (mut pipe, kid, ext) = identity_pipeline(vec![2]);
    let w = Window {
        kernel: KernelId(kid),
        seq: 1,
        sender: HostId(1),
        from: NodeId::Host(HostId(1)),
        last: false,
        chunks: vec![Chunk {
            offset: 0,
            data: vec![1, 2, 3, 4, 5, 6, 7, 8],
        }],
        ext: vec![],
    };
    let good = ncl::ncp::codec::encode_window(&w, ext);
    // Every strict prefix fails to parse (forwarded as plain traffic).
    for cut in [0, 1, 8, 15, good.len() - 1] {
        assert!(
            pipe.process(&good[..cut]).is_none(),
            "prefix of {cut} bytes must not execute"
        );
    }
    // Unknown kernel id: parser has no branch.
    let mut bad = good.clone();
    bad[4] = 0xEE;
    bad[5] = 0xEE;
    assert!(pipe.process(&bad).is_none());
    // The pristine packet still parses.
    assert!(pipe.process(&good).is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Telemetry sections (DESIGN.md §4.9) ride *after* the NCP frame
    /// proper and must be transparent to the codec: the header parser
    /// locates them via `total_len`, they round-trip bit-identically
    /// through append/decode for any hop count, the window itself
    /// decodes as if the section were absent, and truncated sections
    /// are rejected rather than misparsed.
    #[test]
    fn telemetry_sections_are_codec_transparent(
        nhops in 0usize..8,
        seed in any::<u64>(),
        seq in any::<u32>(),
        sender in 1u16..50,
    ) {
        use ncl::nctel::hop::{section_append, section_init, section_records, section_valid};
        use ncl::nctel::HopRecord;
        let w = Window {
            kernel: KernelId(7),
            seq,
            sender: HostId(sender),
            from: NodeId::Host(HostId(sender)),
            last: seed & 1 == 1,
            chunks: vec![Chunk {
                offset: 0,
                data: seed.to_be_bytes().to_vec(),
            }],
            ext: vec![],
        };
        let plain = ncl::ncp::codec::encode_window(&w, 0);
        let mut flagged = plain.clone();
        flagged[3] |= ncl::ncp::FLAG_TELEMETRY;
        let mut section = section_init();
        let records: Vec<HopRecord> = (0..nhops)
            .map(|i| {
                let s = seed.wrapping_mul(i as u64 + 1).wrapping_add(i as u64);
                HopRecord {
                    switch: s as u16,
                    kernel: (s >> 16) as u16,
                    version: (i + 1) as u16,
                    stages: ((s >> 24) as u16) % 12,
                    uops: (s >> 8) as u32,
                    flags: (s as u16) & 0x0003,
                    ticks_in: s,
                    ticks_out: s.wrapping_add(600),
                }
            })
            .collect();
        for r in &records {
            prop_assert!(section_append(&mut section, r));
        }
        flagged.extend_from_slice(&section);

        // The header parser accepts the flagged frame and locates the
        // section boundary.
        let p = ncl::ncp::NcpPacket::new_checked(&flagged[..]).expect("checked");
        prop_assert_eq!(p.total_len(), plain.len());
        prop_assert!(p.flags() & ncl::ncp::FLAG_TELEMETRY != 0);
        // The section round-trips bit-identically.
        prop_assert!(section_valid(&flagged[plain.len()..]));
        prop_assert_eq!(
            section_records(&flagged[plain.len()..]),
            Some(records)
        );
        // The window decodes as if the section were not there.
        let back = ncl::ncp::codec::decode_window(&flagged).expect("decodes");
        prop_assert_eq!(back, w);
        // Every strict prefix of the section is rejected, never
        // misparsed into fewer records.
        for cut in 0..section.len() {
            prop_assert!(
                section_records(&flagged[plain.len()..plain.len() + cut]).is_none(),
                "prefix of {} section bytes must not parse", cut
            );
        }
    }
}

/// The generated PISA parser accepts frames carrying `FLAG_TELEMETRY`
/// (to a pre-telemetry parser it is just an unknown flag bit — version
/// negotiation) and the deparser echoes the bit through execution: the
/// property the simulated switch relies on when it re-appends the
/// section it stripped before the pipeline ran.
#[test]
fn telemetry_flag_survives_the_generated_pipeline() {
    use ncl::ncp::FLAG_TELEMETRY;
    let (mut pipe, kid, ext) = identity_pipeline(vec![2]);
    let w = Window {
        kernel: KernelId(kid),
        seq: 5,
        sender: HostId(3),
        from: NodeId::Host(HostId(3)),
        last: true,
        chunks: vec![Chunk {
            offset: 40,
            data: vec![9, 8, 7, 6, 5, 4, 3, 2],
        }],
        ext: vec![],
    };
    let mut bytes = ncl::ncp::codec::encode_window(&w, ext);
    bytes[3] |= FLAG_TELEMETRY;
    let out = pipe.process(&bytes).expect("flagged frame still executes");
    assert_eq!(out.fwd_code, 0, "identity kernel passes");
    assert!(
        out.packet[3] & FLAG_TELEMETRY != 0,
        "deparser must echo the telemetry flag"
    );
    let back = ncl::ncp::codec::decode_window(&out.packet).expect("decodes");
    assert_eq!(back.chunks, w.chunks);
    assert_eq!(back.last, w.last);
}
