//! Tests of libncrt's two invocation APIs (paper §4.1): the
//! data-centric `ncl::out` (whole arrays) driven by [`NclHost`], and the
//! finer-grained per-window API ([`invocation_packets`]) that custom
//! applications build richer interfaces on — here, a custom app that
//! sends the windows of one invocation in *reverse* order and
//! rate-limited, which the data-centric API cannot express.

use ncl::core::control::ControlPlane;
use ncl::core::deploy::deploy;
use ncl::core::nclc::{compile, CompileConfig};
use ncl::core::runtime::{invocation_packets, NclHost, OutInvocation, TypedArray};
use ncl::model::{HostId, NodeId, ScalarType, Value};
use ncl::netsim::{HostApp, HostCtx, LinkSpec, Packet};
use std::any::Any;
use std::collections::HashMap;

const AND: &str = "hosts worker 2\nswitch s1\nlink worker* s1\n";

fn allreduce_program() -> ncl::core::nclc::CompiledProgram {
    let src = ncl::core::apps::allreduce_source(32, 8);
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![8]);
    cfg.masks.insert("result".into(), vec![8]);
    compile(&src, AND, &cfg).expect("compiles")
}

/// A custom host using the per-window API: reversed order, one window
/// per 100 µs.
struct ReversedSender {
    packets: Vec<Vec<u8>>, // reversed at construction
    dest: NodeId,
}

impl HostApp for ReversedSender {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        for (i, _) in self.packets.iter().enumerate() {
            ctx.set_timer(i as u64 * 100_000, i as u64);
        }
    }
    fn on_packet(&mut self, _ctx: &mut HostCtx, _pkt: &Packet) {}
    fn on_timer(&mut self, ctx: &mut HostCtx, token: u64) {
        ctx.send(self.dest, self.packets[token as usize].clone());
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn per_window_api_interoperates_with_data_centric_api() {
    let program = allreduce_program();
    let kid = program.kernel_ids["allreduce"];

    // Worker 1: custom per-window sender, reversed + paced.
    let data1: Vec<i32> = (0..32).collect();
    let mut packets = invocation_packets(
        &program,
        HostId(1),
        "allreduce",
        &[TypedArray::from_i32(&data1)],
    )
    .expect("splits");
    assert_eq!(packets.len(), 4, "32 elems / windows of 8");
    packets.reverse();
    let w1 = ReversedSender {
        packets,
        dest: NodeId::Host(HostId(2)),
    };

    // Worker 2: the standard data-centric API.
    let mut w2 = NclHost::new(&program);
    let data2: Vec<i32> = (0..32).map(|i| i * 10).collect();
    w2.out(OutInvocation {
        kernel: "allreduce".into(),
        arrays: vec![TypedArray::from_i32(&data2)],
        dest: NodeId::Host(HostId(1)),
        start: 0,
        gap: 0,
    })
    .unwrap();
    w2.bind_incoming(
        &program,
        "allreduce",
        "result",
        &[(ScalarType::I32, 32), (ScalarType::Bool, 1)],
    )
    .unwrap();

    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    apps.insert("worker1".into(), Box::new(w1));
    apps.insert("worker2".into(), Box::new(w2));
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    let cp = ControlPlane::new(program.switch("s1").unwrap());
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(2),
    );
    dep.net.run();

    // Window-seq addressing makes order irrelevant: every slot still
    // aggregates the right elements.
    let w2app = dep.net.host_app::<NclHost>(HostId(2)).unwrap();
    let mem = w2app.memory(kid).unwrap();
    for i in 0..32 {
        assert_eq!(
            mem.arrays[0][i].as_i128() as i64,
            (i + i * 10) as i64,
            "element {i}"
        );
    }
}

#[test]
fn per_window_api_validates_like_out() {
    let program = allreduce_program();
    // Wrong element type.
    assert!(invocation_packets(
        &program,
        HostId(1),
        "allreduce",
        &[TypedArray::from_u64(&[1, 2, 3, 4, 5, 6, 7, 8])],
    )
    .is_err());
    // Partial window.
    assert!(invocation_packets(
        &program,
        HostId(1),
        "allreduce",
        &[TypedArray::from_i32(&[1, 2, 3])],
    )
    .is_err());
    // Unknown kernel.
    assert!(invocation_packets(&program, HostId(1), "nope", &[]).is_err());
}

#[test]
fn packets_decode_to_well_formed_windows() {
    let program = allreduce_program();
    let data: Vec<i32> = (0..32).collect();
    let packets = invocation_packets(
        &program,
        HostId(7),
        "allreduce",
        &[TypedArray::from_i32(&data)],
    )
    .unwrap();
    for (i, p) in packets.iter().enumerate() {
        let w = ncl::ncp::codec::decode_window(p).expect("well-formed");
        assert_eq!(w.seq, i as u32);
        assert_eq!(w.sender, HostId(7));
        assert_eq!(w.last, i == packets.len() - 1);
        assert_eq!(w.chunks[0].offset as usize, i * 8 * 4);
        assert_eq!(w.chunks[0].data.len(), 32);
    }
}
