//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal, API-compatible subset of `rand 0.8` as a path dependency (see
//! README.md "Offline builds"). Only the surface the workspace actually uses
//! is implemented: `StdRng::seed_from_u64`, `Rng::gen`, and the preludes.
//! The generator is SplitMix64 — deterministic, seedable, and statistically
//! good enough for benchmark workload synthesis (its only use here).

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: uniform over the whole domain for integers,
/// uniform in `[0, 1)` for floats.
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform sample in `[low, high)` for unsigned ranges.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        assert!(span > 0, "gen_range called with empty range");
        range.start + self.next_u64() % span
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard.sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Distribution, Rng, RngCore, SeedableRng, Standard};
}
