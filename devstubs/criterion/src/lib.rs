//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal, API-compatible subset of `criterion 0.5` as a path dependency
//! (see README.md "Offline builds"). It implements the surface the repo's
//! benches use: `Criterion::{sample_size, bench_function, benchmark_group}`,
//! `BenchmarkGroup::{throughput, bench_function, finish}`, `Bencher::iter`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is auto-calibrated so one sample runs
//! long enough for the OS timer to resolve (>= ~2 ms), then `sample_size`
//! samples are taken and the median and minimum per-iteration times are
//! reported. No statistical analysis, plotting, or baseline storage — just
//! honest wall-clock numbers suitable for recording in EXPERIMENTS.md.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    tput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Calibrate: grow the per-sample iteration count until one sample takes
    // at least ~2 ms, so timer quantization stays well under 1%.
    loop {
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || b.iters >= 1 << 24 {
            break;
        }
        b.iters = (b.iters * 2).min(1 << 24);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let mut line = format!(
        "{name:<48} time: [{} median, {} min, {} iters/sample]",
        fmt_ns(median),
        fmt_ns(min),
        b.iters
    );
    if let Some(t) = tput {
        let per_sec = |n: u64| n as f64 * 1e9 / median;
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  thrpt: {:.2} MiB/s",
                    per_sec(n) / (1024.0 * 1024.0)
                ));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.3} Melem/s", per_sec(n) / 1e6));
            }
        }
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Benchmark ids built from a name and a parameter, mirroring criterion's.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.0
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
