//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal, API-compatible subset of `proptest 1.x` as a path dependency
//! (see README.md "Offline builds"). It covers the surface used by this
//! repo's tests: the `Strategy` trait with `prop_map` / `prop_recursive` /
//! `boxed`, `BoxedStrategy`, `Just`, integer-range and tuple strategies,
//! `any::<T>()`, `collection::vec`, `sample::select`, `prop_oneof!`, the
//! `proptest!` test macro with `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design: generation is driven by a
//! fixed-seed deterministic RNG (reproducible across runs), and failing
//! cases are reported without shrinking. Both are acceptable for an
//! offline CI gate; rerun with upstream proptest for shrunk minimal
//! counterexamples when the registry is reachable.

pub mod test_runner {
    /// Deterministic RNG driving all generation (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5EED_CAFE_F00D_D00D,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// A failed property assertion (no shrinking in the offline stub).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy::new(self)
        }

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: at each of `depth` levels, pick either a
        /// leaf (the receiver) or one level of `recurse` applied to the
        /// strategy built so far. `_desired_size` / `_expected_branch` are
        /// accepted for API compatibility but unused — depth alone bounds
        /// the stub's recursion.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                cur = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            cur
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: 'static> BoxedStrategy<T> {
        pub fn new<S: Strategy<Value = T> + 'static>(s: S) -> Self {
            BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// String strategies from a small regex subset: a single character
    /// class with a counted repetition, `"[class]{lo,hi}"`. That is the
    /// only shape the workspace's tests use; anything else panics with a
    /// clear message rather than silently generating the wrong language.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_repeat(self).unwrap_or_else(|| {
                panic!(
                    "offline proptest stub supports only \"[class]{{lo,hi}}\" string \
                     strategies, got: {self:?}"
                )
            });
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Parse `[class]{lo,hi}` where class supports literal chars, `a-b`
    /// ranges, and `\n`/`\t`/`\r`/`\\`/`\-`/`\]` escapes.
    fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = {
            let mut idx = None;
            let mut escaped = false;
            for (i, c) in rest.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == ']' {
                    idx = Some(i);
                    break;
                }
            }
            idx?
        };
        let class = &rest[..close];
        let counts = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .split_once(',')?;
        let lo: usize = counts.0.trim().parse().ok()?;
        let hi: usize = counts.1.trim().parse().ok()?;
        if lo > hi {
            return None;
        }

        let mut chars = Vec::new();
        let mut iter = class.chars().peekable();
        while let Some(c) = iter.next() {
            let c = if c == '\\' {
                match iter.next()? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            } else {
                c
            };
            if iter.peek() == Some(&'-') {
                let mut ahead = iter.clone();
                ahead.next(); // consume '-'
                if let Some(&end) = ahead.peek() {
                    if end != ']' {
                        iter = ahead;
                        let end = if end == '\\' {
                            iter.next();
                            match iter.next()? {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            }
                        } else {
                            iter.next();
                            end
                        };
                        for code in (c as u32)..=(end as u32) {
                            chars.push(char::from_u32(code)?);
                        }
                        continue;
                    }
                }
            }
            chars.push(c);
        }
        if chars.is_empty() {
            return None;
        }
        Some((chars, lo, hi))
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            })*
        };
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {
            $(
                #[allow(non_snake_case)]
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($s,)+) = self;
                        ($($s.generate(rng),)+)
                    }
                }
            )*
        };
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })*
        };
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Anything usable as a length specification for `collection::vec`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.items.len() as u64) as usize;
            self.items[idx].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors real proptest's `prelude::prop` namespace module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Uniform choice between strategy alternatives that share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+), lhs, rhs
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// The property-test harness macro. Each generated `#[test]` runs
/// `config.cases` deterministic cases; the first failing case panics with
/// the case index and assertion message (no shrinking in the stub).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..config.cases {
                    $(
                        let $arg = {
                            let strat = $strat;
                            $crate::strategy::Strategy::generate(&strat, &mut rng)
                        };
                    )+
                    #[allow(unreachable_code)]
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}
