//! Quickstart: compile a one-line NCL kernel, inspect the artifacts,
//! and push a window through the deployed switch.
//!
//! ```text
//! cargo run -p ncl-examples --bin quickstart
//! ```

use c3::{HostId, NodeId, ScalarType};
use ncl_core::control::ControlPlane;
use ncl_core::deploy::deploy;
use ncl_core::nclc::{compile, CompileConfig};
use ncl_core::runtime::{NclHost, OutInvocation, TypedArray};
use netsim::{HostApp, LinkSpec};
use std::collections::HashMap;

/// The whole NCL program: a kernel that counts packets and doubles the
/// payload on its way through the switch.
const PROGRAM: &str = r#"
_net_ _at_("s1") unsigned packets[1] = {0};

_net_ _out_ void double_it(int *data) {
    packets[0] += 1;
    for (unsigned i = 0; i < window.len; ++i)
        data[i] = data[i] * 2;
}

_net_ _in_ void receive(int *data, _ext_ int *out) {
    for (unsigned i = 0; i < window.len; ++i)
        out[window.seq * window.len + i] = data[i];
}
"#;

/// Two hosts around one switch.
const AND: &str = "
host alice
host bob
switch s1
link alice s1
link bob s1
";

fn main() {
    // 1. Compile: NCL + AND → per-switch pipeline + P4 + host kernels.
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("double_it".into(), vec![4]); // 4 ints per window
    cfg.masks.insert("receive".into(), vec![4]);
    let program = compile(PROGRAM, AND, &cfg).expect("compiles");

    let s1 = program.switch("s1").expect("one switch");
    println!("== compiled for s1 ==");
    println!(
        "  stages: {}   PHV: {}B hdr + {}B meta   recirculation: {}",
        s1.report.stages_used,
        s1.report.phv_header_bytes,
        s1.report.phv_metadata_bytes,
        s1.report.recirc_passes
    );
    println!(
        "  generated P4: {} effective lines (vs {} lines of NCL)",
        ncl_p4::p4emit::effective_lines(&s1.p4_source),
        ncl_p4::p4emit::effective_lines(PROGRAM),
    );

    // 2. Deploy on the simulated network and invoke the kernel.
    let kid = program.kernel_ids["double_it"];
    let data: Vec<i32> = (1..=16).collect();
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    let mut alice = NclHost::new(&program);
    alice
        .out(OutInvocation {
            kernel: "double_it".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(2)), // bob
            start: 0,
            gap: 0,
        })
        .expect("valid invocation");
    apps.insert("alice".into(), Box::new(alice));
    let mut bob = NclHost::new(&program);
    bob.bind_incoming(&program, "double_it", "receive", &[(ScalarType::I32, 16)])
        .expect("paired kernel");
    apps.insert("bob".into(), Box::new(bob));

    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    let end = dep.net.run();

    // 3. Inspect the results.
    let bob = dep.net.host_app::<NclHost>(HostId(2)).unwrap();
    let received: Vec<i64> = (0..16)
        .map(|i| bob.memory(kid).unwrap().arrays[0][i].as_i128() as i64)
        .collect();
    println!("== run ==");
    println!("  alice sent:   {data:?}");
    println!("  bob received: {received:?}");
    assert_eq!(received, (1..=16).map(|v| v * 2).collect::<Vec<i64>>());
    let packets = dep
        .net
        .switch_pipeline_mut(dep.switch("s1"))
        .unwrap()
        .register_read("packets", 0)
        .unwrap();
    println!(
        "  switch saw {} windows, finished in {:.1} µs of simulated time",
        packets,
        end as f64 / 1000.0
    );
    let _ = ControlPlane::new(s1);
    println!("ok");
}
