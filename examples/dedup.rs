//! In-network duplicate suppression with a Bloom filter — the stdlib
//! direction the paper sketches in §3.2 ("fast MAT lookups can be
//! exposed as Maps or bloom-filters"), built from the `_hash` builtin
//! (the stage hash unit) and plain switch memory.
//!
//! A sender streams flow records with repeats; the switch drops records
//! whose (two-hash) Bloom signature was already seen, so the collector
//! receives each flow roughly once.
//!
//! ```text
//! cargo run -p ncl-examples --bin dedup
//! ```

use c3::{HostId, NodeId, ScalarType};
use ncl_core::deploy::deploy;
use ncl_core::nclc::{compile, CompileConfig};
use ncl_core::runtime::{NclHost, OutInvocation, TypedArray};
use netsim::{HostApp, LinkSpec};
use std::collections::HashMap;

const BITS: usize = 1024;

const PROGRAM: &str = r#"
_net_ _at_("s1") bool bloom[1024] = {false};
_net_ _at_("s1") unsigned dropped[1] = {0};

_net_ _out_ void dedup(uint32_t *flow) {
    unsigned h1 = _hash(flow[0], 17) & 1023;
    unsigned h2 = _hash(flow[0], 91) & 1023;
    if (bloom[h1] && bloom[h2]) {
        dropped[0] += 1;
        _drop();
    }
    bloom[h1] = true;
    bloom[h2] = true;
}

_net_ _in_ void collect(uint32_t *flow, _ext_ uint32_t *seen, _ext_ uint32_t *n) {
    seen[n[0] & 4095] = flow[0];
    n[0] = n[0] + 1;
}
"#;

const AND: &str = "host sender\nhost collector\nswitch s1\nlink sender s1\nlink collector s1\n";

fn main() {
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("dedup".into(), vec![1]);
    cfg.masks.insert("collect".into(), vec![1]);
    // nclint flags the check-then-act race it cannot prove away: the
    // `dropped` increment is decided by Bloom bits read in an earlier
    // stage, so two same-signature packets racing through the pipeline
    // can both pass before either sets the bits. For a probabilistic
    // dedup that is the accepted failure mode (a Bloom filter already
    // admits false negatives under eviction); downgrade with eyes open.
    use ncl_core::nclc::{LintCode, LintLevel};
    cfg.lint_levels
        .insert(LintCode::NonAtomicRmw, LintLevel::Warn);
    let program = compile(PROGRAM, AND, &cfg).expect("compiles");
    let kid = program.kernel_ids["dedup"];
    let s1c = program.switch("s1").unwrap();
    println!(
        "compiled dedup kernel: {} stages, Bloom filter of {BITS} bits",
        s1c.report.stages_used
    );

    // 64 distinct flows, each sent 4 times (interleaved).
    let distinct = 64u32;
    let repeats = 4u32;
    let mut sender = NclHost::new(&program);
    for r in 0..repeats {
        for f in 0..distinct {
            sender
                .out(OutInvocation {
                    kernel: "dedup".into(),
                    arrays: vec![TypedArray::from_u32(&[0xABC0_0000 + f])],
                    dest: NodeId::Host(HostId(2)),
                    start: (r * distinct + f) as u64 * 1_000,
                    gap: 0,
                })
                .unwrap();
        }
        let _ = r;
    }
    let mut collector = NclHost::new(&program);
    collector
        .bind_incoming(
            &program,
            "dedup",
            "collect",
            &[(ScalarType::U32, 4096), (ScalarType::U32, 1)],
        )
        .unwrap();
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    apps.insert("sender".into(), Box::new(sender));
    apps.insert("collector".into(), Box::new(collector));
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    dep.net.run();

    let collector = dep.net.host_app::<NclHost>(HostId(2)).unwrap();
    let delivered = collector.memory(kid).unwrap().arrays[1][0].bits();
    let dropped = dep
        .net
        .switch_pipeline_mut(dep.switch("s1"))
        .unwrap()
        .register_read("dropped", 0)
        .unwrap()
        .bits();
    let sent = (distinct * repeats) as u64;
    println!("sent {sent} records ({distinct} distinct × {repeats})");
    println!("switch dropped {dropped} duplicates; collector saw {delivered}");
    let false_positives = distinct as i64 - delivered as i64;
    println!(
        "false-positive suppressions: {false_positives} \
         ({:.1}% with {} bits for {distinct} flows)",
        100.0 * false_positives as f64 / distinct as f64,
        BITS
    );
    assert_eq!(delivered + dropped, sent);
    assert!(
        delivered <= distinct as u64,
        "no duplicate may survive twice"
    );
    assert!(
        delivered as f64 >= distinct as f64 * 0.85,
        "false-positive rate should be small at this load factor"
    );
    println!("ok");
}
