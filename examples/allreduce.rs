//! The paper's Fig. 4: synchronous in-network AllReduce, compared
//! against a host-based parameter server on the same topology.
//!
//! ```text
//! cargo run -p ncl-examples --bin allreduce -- [workers] [elements]
//! ```

use c3::{HostId, NodeId, ScalarType, Value};
use ncl_core::apps::{allreduce_source, PsServer, PsWorker};
use ncl_core::control::ControlPlane;
use ncl_core::deploy::deploy;
use ncl_core::nclc::{compile, CompileConfig};
use ncl_core::runtime::{NclHost, OutInvocation, TypedArray};
use netsim::{HostApp, LinkSpec, NetworkBuilder, SwitchCfg};
use std::collections::HashMap;

const WIN: usize = 8;

fn main() {
    let mut args = std::env::args().skip(1);
    let nworkers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let elements: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1024);
    let elements = elements.div_ceil(WIN) * WIN; // whole windows
    println!("AllReduce: {nworkers} workers × {elements} int32 elements, windows of {WIN}");

    // ---- in-network (Fig. 4) ----
    let src = allreduce_source(elements, WIN);
    let and = format!("hosts worker {nworkers}\nswitch s1\nlink worker* s1\n");
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("allreduce".into(), vec![WIN as u16]);
    cfg.masks.insert("result".into(), vec![WIN as u16]);
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kid = program.kernel_ids["allreduce"];
    let s1c = program.switch("s1").unwrap();
    println!(
        "  compiled: {} stages, {} lane banks, {} effective P4 lines",
        s1c.report.stages_used,
        s1c.pipeline.registers.len(),
        ncl_p4::p4emit::effective_lines(&s1c.p4_source)
    );

    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for w in 1..=nworkers as u16 {
        let mut host = NclHost::new(&program);
        let data: Vec<i32> = (0..elements as i32).map(|i| i + w as i32).collect();
        host.out(OutInvocation {
            kernel: "allreduce".into(),
            arrays: vec![TypedArray::from_i32(&data)],
            dest: NodeId::Host(HostId(w % nworkers as u16 + 1)),
            start: 0,
            gap: 0,
        })
        .unwrap();
        host.bind_incoming(
            &program,
            "allreduce",
            "result",
            &[(ScalarType::I32, elements), (ScalarType::Bool, 1)],
        )
        .unwrap();
        host.done_on_flag(kid, 1);
        apps.insert(format!("worker{w}"), Box::new(host));
    }
    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    let cp = ControlPlane::new(s1c);
    let s1 = dep.switch("s1");
    cp.ctrl_wr(
        dep.net.switch_pipeline_mut(s1).unwrap(),
        "nworkers",
        Value::u32(nworkers as u32),
    );
    dep.net.run();
    let inc_done = (1..=nworkers as u16)
        .map(|w| {
            dep.net
                .host_app::<NclHost>(HostId(w))
                .unwrap()
                .done_at
                .expect("completed")
        })
        .max()
        .unwrap();
    let stats = dep.net.switch_stats(s1).unwrap();
    // Verify one element on worker 1.
    let w1 = dep.net.host_app::<NclHost>(HostId(1)).unwrap();
    let got = w1.memory(kid).unwrap().arrays[0][0].as_i128() as i64;
    let want: i64 = (1..=nworkers as i64).sum();
    assert_eq!(got, want, "element 0 must be the sum of worker offsets");

    println!("== in-network ==");
    println!(
        "  completion: {:.1} µs   windows in: {}   broadcast: {}   dropped in-switch: {}",
        inc_done as f64 / 1000.0,
        stats.ncp_processed,
        stats.broadcast,
        stats.kernel_drops
    );

    // ---- parameter-server baseline ----
    let mut b = NetworkBuilder::new();
    let ps_node = NodeId::Host(HostId(nworkers as u16 + 1));
    let mut worker_ids = Vec::new();
    for w in 1..=nworkers as u16 {
        let data: Vec<i32> = (0..elements as i32).map(|i| i + w as i32).collect();
        let id = b.add_host(Box::new(PsWorker::new(ps_node, data, WIN)));
        worker_ids.push(NodeId::Host(id));
    }
    b.add_host(Box::new(PsServer::new(worker_ids)));
    let sw = b.add_switch(SwitchCfg::default());
    for w in 1..=nworkers as u16 + 1 {
        b.link(HostId(w), sw, LinkSpec::default());
    }
    let mut net = b.build();
    net.run();
    let ps_done = (1..=nworkers as u16)
        .map(|w| {
            net.host_app::<PsWorker>(HostId(w))
                .unwrap()
                .done_at
                .unwrap()
        })
        .max()
        .unwrap();
    println!("== parameter server ==");
    println!("  completion: {:.1} µs", ps_done as f64 / 1000.0);
    println!("== speedup: {:.2}× ==", ps_done as f64 / inc_done as f64);
}
