//! Fig. 3c: one NCL program deployed across a two-tier overlay, with
//! per-location kernel roles and the overlay embedded into a larger
//! physical spine-leaf fabric.
//!
//! Edge switches pre-scale sensor readings; the aggregation switch keeps
//! per-sensor maxima and forwards everything to a collector host.
//!
//! ```text
//! cargo run -p ncl-examples --bin multi_switch
//! ```

use c3::{HostId, NodeId, ScalarType, Value};
use ncl_and::{AndKind, PhysTopology};
use ncl_core::deploy::deploy;
use ncl_core::nclc::{compile, CompileConfig};
use ncl_core::runtime::{NclHost, OutInvocation, TypedArray};
use netsim::{HostApp, LinkSpec};
use std::collections::HashMap;

const PROGRAM: &str = r#"
// Aggregation state lives only at the core switch.
_net_ _at_("core") int peak[4] = {0};

// One SPMD kernel, diverging by role (paper: "location-less kernels run
// on all switches in SPMD fashion ... divergent behavior can still be
// expressed").
_net_ _out_ void telemetry(int *reading) {
    if (_here("core")) {
        for (unsigned i = 0; i < window.len; ++i) {
            if (reading[i] > peak[i]) { peak[i] = reading[i]; }
        }
    } else {
        // Edge: normalize raw sensor units (×3 gain).
        for (unsigned i = 0; i < window.len; ++i)
            reading[i] = reading[i] * 3;
    }
}

_net_ _in_ void collect(int *reading, _ext_ int *log, _ext_ int *n) {
    for (unsigned i = 0; i < window.len; ++i)
        log[n[0] * window.len + i] = reading[i];
    n[0] = n[0] + 1;
}
"#;

const AND: &str = "
host sensor1
host sensor2
host collector
switch edge1
switch edge2
switch core
link sensor1 edge1
link sensor2 edge2
link edge1 core
link edge2 core
link collector core
";

fn main() {
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("telemetry".into(), vec![4]);
    cfg.masks.insert("collect".into(), vec![4]);
    let program = compile(PROGRAM, AND, &cfg).expect("compiles");
    println!("compiled {} switch programs:", program.switches.len());
    for (label, c) in &program.switches {
        println!(
            "  {label}: {} stages, {} P4 lines",
            c.report.stages_used,
            ncl_p4::p4emit::effective_lines(&c.p4_source)
        );
    }

    // Embed the overlay into a 2-spine/4-leaf physical fabric (the
    // deployment mapping the paper assumes, Fig. 3c).
    let phys = PhysTopology::spine_leaf(2, 4, 2);
    let assignment = program.overlay.embed(&phys).expect("embeds");
    let cost = program.overlay.embedding_cost(&phys, &assignment);
    println!("overlay embeds into spine-leaf(2,4,2): total path cost {cost}");
    for (ov, pi) in assignment.iter().enumerate() {
        let node = &program.overlay.nodes[ov];
        let kind = match phys.nodes[*pi] {
            AndKind::Host => "host",
            AndKind::Switch => "switch",
        };
        println!("  {} → physical {kind} #{pi}", node.label);
    }

    // Run on the (identity-mapped) simulated network.
    let kid = program.kernel_ids["telemetry"];
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for (si, readings) in [[5i32, 9, 2, 7], [8, 1, 6, 3]].iter().enumerate() {
        let mut sensor = NclHost::new(&program);
        sensor
            .out(OutInvocation {
                kernel: "telemetry".into(),
                arrays: vec![TypedArray::from_i32(readings)],
                dest: NodeId::Host(HostId(3)), // collector
                start: 0,
                gap: 0,
            })
            .unwrap();
        apps.insert(format!("sensor{}", si + 1), Box::new(sensor));
    }
    let mut collector = NclHost::new(&program);
    collector
        .bind_incoming(
            &program,
            "telemetry",
            "collect",
            &[(ScalarType::I32, 16), (ScalarType::I32, 1)],
        )
        .unwrap();
    apps.insert("collector".into(), Box::new(collector));

    let mut dep = deploy(
        &program,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    dep.net.run();

    let collector = dep.net.host_app::<NclHost>(dep.host("collector")).unwrap();
    let n = collector.memory(kid).unwrap().arrays[1][0].as_i128();
    println!("collector received {n} windows:");
    for w in 0..n as usize {
        let vals: Vec<i64> = (0..4)
            .map(|i| collector.memory(kid).unwrap().arrays[0][w * 4 + i].as_i128() as i64)
            .collect();
        println!("  {vals:?}   (edge-scaled ×3)");
    }
    // Core switch kept element-wise maxima of the scaled readings. The
    // compiler lane-split `peak`; the control plane resolves that.
    let core = dep.switch("core");
    let cp = ncl_core::control::ControlPlane::new(program.switch("core").expect("core program"));
    let pipe = dep.net.switch_pipeline_mut(core).unwrap();
    let peaks: Vec<Value> = (0..4)
        .map(|i| cp.read_register(pipe, "peak", i).unwrap())
        .collect();
    println!("core switch peaks: {peaks:?}");
    assert_eq!(peaks[0], Value::i32(24)); // max(5,8)*3
    assert_eq!(peaks[1], Value::i32(27)); // max(9,1)*3
    println!("ok");
}
