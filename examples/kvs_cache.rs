//! The paper's Fig. 5: an in-network KVS cache. Clients issue a
//! Zipf-skewed GET/PUT mix; hot keys end up cached on the switch and
//! served at line rate, cutting both latency and server load.
//!
//! ```text
//! cargo run -p ncl-examples --bin kvs_cache -- [clients] [ops-per-client] [zipf-s]
//! ```

use c3::HostId;
use ncl_core::apps::{kvs_source, KvsClient, KvsOp, KvsServer};
use ncl_core::control::ControlPlane;
use ncl_core::deploy::deploy;
use ncl_core::nclc::{compile, CompileConfig};
use netsim::{HostApp, LinkSpec};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;

const VAL_WORDS: usize = 8; // 32-byte values
const SLOTS: usize = 64;
const KEYSPACE: u64 = 500;

/// Zipf sampler over 1..=n with parameter s (inverse-CDF on precomputed
/// weights).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        (self.cdf.partition_point(|&c| c < u) + 1) as u64
    }
}

fn run(with_cache: bool, nclients: usize, ops: usize, skew: f64) -> (f64, f64, u64, u64) {
    let server_id = (nclients + 1) as u16;
    let src = kvs_source(server_id, SLOTS, VAL_WORDS);
    let and = format!(
        "hosts client {nclients}\nswitch s1\nhost server\nlink client* s1\nlink server s1\n"
    );
    let mut cfg = CompileConfig::default();
    cfg.masks
        .insert("query".into(), vec![1, VAL_WORDS as u16, 1]);
    let program = compile(&src, &and, &cfg).expect("compiles");
    let kernel = program.kernel_ids["query"];
    let control = with_cache.then(|| ControlPlane::new(program.switch("s1").unwrap()));

    let zipf = Zipf::new(KEYSPACE, skew);
    let mut apps: HashMap<String, Box<dyn HostApp>> = HashMap::new();
    for c in 1..=nclients as u16 {
        let mut rng = StdRng::seed_from_u64(c as u64 * 7919);
        let mut schedule = Vec::with_capacity(ops);
        for i in 0..ops {
            let key = zipf.sample(&mut rng);
            let put = rng.gen::<f64>() < 0.02; // GET-heavy, 2% PUTs
            let _ = i;
            schedule.push(KvsOp {
                at: (i as u64) * 200_000 + c as u64 * 1_000, // 5k ops/s/client
                key,
                put,
            });
        }
        apps.insert(
            format!("client{c}"),
            Box::new(KvsClient::new(
                c3::NodeId::Host(HostId(server_id)),
                HostId(server_id),
                kernel,
                VAL_WORDS,
                schedule,
            )),
        );
    }
    // The server starts with every key populated (steady-state store).
    let mut server = KvsServer::new(kernel, VAL_WORDS, None, control, SLOTS);
    for k in 1..=KEYSPACE {
        server.store.insert(k, KvsClient::value_for(k, VAL_WORDS));
    }
    apps.insert("server".into(), Box::new(server));
    let mut stripped = program.clone();
    if !with_cache {
        stripped.switches.clear();
    }
    let mut dep = deploy(
        &stripped,
        apps,
        LinkSpec::default(),
        pisa::ResourceModel::default(),
    )
    .expect("deploys");
    if with_cache {
        let s1 = dep.switch("s1");
        dep.net
            .host_app_mut::<KvsServer>(HostId(server_id))
            .unwrap()
            .cache_switch = Some(s1);
    }
    dep.net.run();

    let mut latencies = Vec::new();
    let mut hit_lat = Vec::new();
    let mut miss_lat = Vec::new();
    let mut hits = 0u64;
    let mut total_gets = 0u64;
    let mut corrupt = 0u64;
    for c in 1..=nclients as u16 {
        let client = dep.net.host_app::<KvsClient>(HostId(c)).unwrap();
        corrupt += client.corrupt;
        for s in &client.samples {
            if !s.put {
                total_gets += 1;
                if s.from_cache {
                    hits += 1;
                    hit_lat.push(s.latency);
                } else {
                    miss_lat.push(s.latency);
                }
                latencies.push(s.latency);
            }
        }
    }
    let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64 / 1000.0;
    if !hit_lat.is_empty() {
        println!(
            "    breakdown: cache-hit mean {:.2} µs ({} GETs), miss mean {:.2} µs ({} GETs)",
            avg(&hit_lat),
            hit_lat.len(),
            avg(&miss_lat),
            miss_lat.len()
        );
    }
    assert_eq!(corrupt, 0, "no completed GET may be corrupt");
    latencies.sort_unstable();
    let mean = latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64;
    let p99 = latencies
        .get(latencies.len().saturating_sub(1) * 99 / 100)
        .copied()
        .unwrap_or(0) as f64;
    let served = dep
        .net
        .host_app::<KvsServer>(HostId(server_id))
        .unwrap()
        .served;
    let hit_pct = 100.0 * hits as f64 / total_gets.max(1) as f64;
    (mean / 1000.0, p99 / 1000.0, served, hit_pct as u64)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let nclients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let ops: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let skew: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1.3);
    println!(
        "KVS: {nclients} clients × {ops} ops, zipf(s={skew}) over {KEYSPACE} keys, \
         {SLOTS}-slot cache, {}B values",
        VAL_WORDS * 4
    );
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>8}",
        "mode", "mean µs", "p99 µs", "server ops", "hit %"
    );
    let (mean, p99, served, _) = run(false, nclients, ops, skew);
    println!(
        "{:<14} {mean:>10.1} {p99:>10.1} {served:>12} {:>8}",
        "server-only", "—"
    );
    let (mean_c, p99_c, served_c, hits) = run(true, nclients, ops, skew);
    println!(
        "{:<14} {mean_c:>10.1} {p99_c:>10.1} {served_c:>12} {hits:>8}",
        "switch-cache"
    );
    println!(
        "speedup: mean {:.2}×, p99 {:.2}×; server load ÷{:.1}",
        mean / mean_c,
        p99 / p99_c,
        served as f64 / served_c.max(1) as f64
    );
}
