//! NCP over real UDP sockets (the paper's Sockets/UDP prototype
//! backend): a software switch thread runs the compiled pipeline against
//! loopback datagrams while two host threads exchange windows through
//! it — with NCP-R enabled end to end: h1 tracks every window in the
//! reliable sender (wall-clocked by the endpoint), h2 acknowledges with
//! explicit ACK frames, and the switch routes control frames without
//! executing them.
//!
//! ```text
//! cargo run -p ncl-examples --bin udp_backend
//! ```

use c3::{Chunk, HostId, KernelId, NodeId, ScalarType, Window};
use ncl_core::nclc::{compile, CompileConfig};
use ncp::reliable::{ReliableConfig, Sender};
use ncp::udp::{RecvEvent, UdpEndpoint};
use ncp::{AckRepr, NcpPacket, FLAG_ACK, FLAG_NACK};
use pisa::{Pipeline, ResourceModel};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

const PROGRAM: &str = r#"
_net_ _at_("s1") int seen[1] = {0};
_net_ _out_ void stamp(int *data) {
    seen[0] += 1;
    data[0] = data[0] + 1000;     // switch's mark
    data[1] = seen[0];            // running packet count
}
"#;

const AND: &str = "host h1\nhost h2\nswitch s1\nlink h1 s1\nlink h2 s1\n";

fn main() {
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("stamp".into(), vec![2]);
    let program = compile(PROGRAM, AND, &cfg).expect("compiles");
    let kid = program.kernel_ids["stamp"];
    let pipeline = Pipeline::load(
        program.switch("s1").unwrap().pipeline.clone(),
        ResourceModel::default(),
    )
    .expect("loads");

    // Real sockets on loopback.
    let mut h1 = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let mut h2 = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let mut sw = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let sw_addr = sw.local_addr().unwrap();
    let h1_addr = h1.local_addr().unwrap();
    let h2_addr = h2.local_addr().unwrap();
    println!("software switch on {sw_addr}, h1 on {h1_addr}, h2 on {h2_addr}");

    // The software switch: pipeline + forwarding (Fig. 3b). Data flows
    // h1 → h2; NCP-R control frames are routed by source without
    // touching switch state.
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let switch = thread::spawn(move || {
        let mut pipeline = pipeline;
        loop {
            if stop_rx.try_recv().is_ok() {
                return pipeline;
            }
            let Ok(Some((bytes, src))) = sw.recv_raw() else {
                continue;
            };
            let is_ctrl = NcpPacket::new_checked(&bytes[..])
                .map(|p| p.flags() & (FLAG_ACK | FLAG_NACK) != 0)
                .unwrap_or(false);
            let towards: SocketAddr = if src == h2_addr { h1_addr } else { h2_addr };
            if is_ctrl {
                // ACK/NACK frames are forwarded, never executed.
                let _ = sw.send_raw(towards, &bytes);
                continue;
            }
            match pipeline.process(&bytes) {
                Some(out) if out.fwd_code != 3 => {
                    let _ = sw.send_raw(towards, &out.packet);
                }
                Some(_) => {} // dropped by the kernel
                None => {
                    // Not NCP: plain forward.
                    let _ = sw.send_raw(towards, &bytes);
                }
            }
        }
    });

    // h1 streams 5 windows, each tracked by the NCP-R sender and
    // wall-clocked by the endpoint.
    let mut sender = Sender::new(ReliableConfig {
        rto: 50_000_000, // 50 ms: generous for loopback
        cwnd: 8,         // all five windows fit the first flight
        ..ReliableConfig::default()
    });
    let mut windows = Vec::new();
    for v in 0..5i32 {
        let w = Window {
            kernel: KernelId(kid),
            seq: v as u32,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: v == 4,
            chunks: vec![Chunk {
                offset: 0,
                data: [v, 0].iter().flat_map(|x| x.to_be_bytes()).collect(),
            }],
            ext: vec![],
        };
        assert!(sender.track(w.kernel.0, w.seq, h1.now()));
        h1.send_window(sw_addr, &w).unwrap();
        windows.push(w);
    }

    // h2 collects them and acknowledges each with an explicit frame.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut got = 0;
    h2.set_timeout(Some(Duration::from_millis(20))).unwrap();
    while got < 5 && Instant::now() < deadline {
        if let Some((w, src)) = h2.recv_window().unwrap() {
            let marked = w.chunks[0].get(ScalarType::I32, 0).as_i128();
            let count = w.chunks[0].get(ScalarType::I32, 1).as_i128();
            println!(
                "h2 ← window seq={} value={marked} (switch count {count})",
                w.seq
            );
            assert!(marked >= 1000, "switch mark missing");
            h2.send_ack(
                src,
                AckRepr {
                    nack: false,
                    kernel: w.kernel.0,
                    seq: w.seq,
                    sender: w.sender.0,
                    from: 2,
                },
            )
            .unwrap();
            got += 1;
        }
    }

    // h1 drains ACKs (retransmitting on RTO if loopback drops — it
    // rarely does) until every window is retired.
    h1.set_timeout(Some(Duration::from_millis(20))).unwrap();
    while !sender.idle() && Instant::now() < deadline {
        match h1.poll_event().unwrap() {
            RecvEvent::Ack(ack, _) => {
                assert!(!ack.nack);
                sender.on_ack(ack.kernel, ack.seq);
            }
            RecvEvent::Timeout => {
                let (due, _) = sender.poll(h1.now());
                for (k, seq) in due {
                    let w = &windows[seq as usize];
                    assert_eq!(w.kernel.0, k);
                    println!("h1 retransmits seq={seq}");
                    h1.send_window(sw_addr, w).unwrap();
                }
            }
            _ => {}
        }
    }
    assert!(sender.idle(), "every window must be acknowledged");
    println!(
        "h1: all {} windows delivered exactly once ({} retransmits)",
        got,
        sender.stats().retransmits
    );

    stop_tx.send(()).unwrap();
    let pipeline = switch.join().unwrap();
    println!(
        "switch register 'seen' = {} (persistent across datagrams)",
        pipeline.register_read("seen", 0).unwrap()
    );
    assert_eq!(got, 5);
    println!("ok");
}
