//! NCP over real UDP sockets (the paper's Sockets/UDP prototype
//! backend): a software switch thread runs the compiled pipeline against
//! loopback datagrams while two host threads exchange windows through
//! it.
//!
//! ```text
//! cargo run -p ncl-examples --bin udp_backend
//! ```

use c3::{Chunk, HostId, KernelId, NodeId, ScalarType, Window};
use ncl_core::nclc::{compile, CompileConfig};
use ncp::udp::UdpEndpoint;
use pisa::{Pipeline, ResourceModel};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

const PROGRAM: &str = r#"
_net_ _at_("s1") int seen[1] = {0};
_net_ _out_ void stamp(int *data) {
    seen[0] += 1;
    data[0] = data[0] + 1000;     // switch's mark
    data[1] = seen[0];            // running packet count
}
"#;

const AND: &str = "host h1\nhost h2\nswitch s1\nlink h1 s1\nlink h2 s1\n";

fn main() {
    let mut cfg = CompileConfig::default();
    cfg.masks.insert("stamp".into(), vec![2]);
    let program = compile(PROGRAM, AND, &cfg).expect("compiles");
    let kid = program.kernel_ids["stamp"];
    let pipeline = Pipeline::load(
        program.switch("s1").unwrap().pipeline.clone(),
        ResourceModel::default(),
    )
    .expect("loads");

    // Real sockets on loopback.
    let mut h1 = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let mut h2 = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let mut sw = UdpEndpoint::bind("127.0.0.1:0").unwrap();
    let sw_addr = sw.local_addr().unwrap();
    let h2_addr = h2.local_addr().unwrap();
    println!("software switch on {sw_addr}, h2 on {h2_addr}");

    // The software switch: pipeline + forwarding (Fig. 3b).
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let switch = thread::spawn(move || {
        let mut pipeline = pipeline;
        loop {
            if stop_rx.try_recv().is_ok() {
                return pipeline;
            }
            let Ok(Some((bytes, _src))) = sw.recv_raw() else {
                continue;
            };
            match pipeline.process(&bytes) {
                Some(out) if out.fwd_code != 3 => {
                    let dst: SocketAddr = h2_addr; // star: pass towards h2
                    let _ = sw.send_raw(dst, &out.packet);
                }
                Some(_) => {} // dropped by the kernel
                None => {
                    // Not NCP: plain forward.
                    let _ = sw.send_raw(h2_addr, &bytes);
                }
            }
        }
    });

    // h1 streams 5 windows.
    for v in 0..5i32 {
        let w = Window {
            kernel: KernelId(kid),
            seq: v as u32,
            sender: HostId(1),
            from: NodeId::Host(HostId(1)),
            last: v == 4,
            chunks: vec![Chunk {
                offset: 0,
                data: [v, 0].iter().flat_map(|x| x.to_be_bytes()).collect(),
            }],
            ext: vec![],
        };
        h1.send_window(sw_addr, &w).unwrap();
    }

    // h2 collects them.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut got = 0;
    while got < 5 && Instant::now() < deadline {
        if let Some((w, _)) = h2.recv_window().unwrap() {
            let marked = w.chunks[0].get(ScalarType::I32, 0).as_i128();
            let count = w.chunks[0].get(ScalarType::I32, 1).as_i128();
            println!(
                "h2 ← window seq={} value={marked} (switch count {count})",
                w.seq
            );
            assert!(marked >= 1000, "switch mark missing");
            got += 1;
        }
    }
    stop_tx.send(()).unwrap();
    let pipeline = switch.join().unwrap();
    println!(
        "switch register 'seen' = {} (persistent across datagrams)",
        pipeline.register_read("seen", 0).unwrap()
    );
    assert_eq!(got, 5);
    println!("ok");
}
